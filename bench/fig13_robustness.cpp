// Figure 13 (beyond the paper) — the cost of resilience, and throughput
// under faults.
//
// Two questions, one binary:
//
//  1. OVERHEAD — what does the fault/health instrumentation cost a
//     fault-free request? Five arms run the same single-gang executor
//     workload (1D 3-point, transpose layout) and differ only in the
//     resilience configuration:
//
//        off             injection disabled, health off — the production
//                        default, and the arm whose number joins the
//                        committed baseline (a regression here is a real
//                        hot-path regression)
//        points          injector globally ENABLED, zero points armed —
//                        the registry-call cost of live fault points
//        armed           workspace.alloc + executor.dispatch + kernel.sweep
//                        armed at probability 0.0 — the full draw cost per
//                        pass, still zero fires
//        health_boundary Options::health_check = kBoundary (O(surface) scan)
//        health_full     Options::health_check = kFull (O(volume) scan)
//
//     Arms are measured round-robin (best-of over interleaved rounds, the
//     robust estimator on this virtualized machine) and gated IN-BINARY:
//
//        --max-overhead X        fail when points/armed/health_boundary
//                                throughput drops more than X below `off`
//                                (default 0.02 — the instrumentation must
//                                stay within ~2% when switched off or idle)
//        --max-overhead-full X   same gate for health_full (default 0.10:
//                                a whole-interior scan per execute is an
//                                opt-in with a real, bounded price)
//
//  2. DEGRADED MODE — what does the service sustain when kernels actually
//     fault? kernel.sweep is armed at 5% probability under a fixed seed and
//     a retry-budgeted Scheduler serves a closed-loop batch of distinct
//     requests. The executor degrades the cached plan one ISA rung per
//     fault (AVX-512 -> AVX2 -> scalar, pinned); scalar-rung faults surface
//     as transients the scheduler's retry absorbs. The binary FAILS unless
//     every request completes with retry_exhausted == 0 — degraded, never
//     wrong, never stuck. Throughput is recorded as points_per_s (machine-
//     bound, median-normalized by compare_baseline.py like every other
//     throughput record).
//
// JSON identity fields: bench/kind/arm/stencil/nx/steps/dtype/boundary.
// Everything measured (points_per_s, requests, retries) is NON_IDENTITY.

#include "bench_common.hpp"

#include <algorithm>
#include <future>
#include <vector>

namespace {

using namespace bench;

struct Flags {
  double max_overhead = 0.02;
  double max_overhead_full = 0.10;
};

Flags parse_extra(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--max-overhead") && i + 1 < argc)
      f.max_overhead = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--max-overhead-full") && i + 1 < argc)
      f.max_overhead_full = std::atof(argv[++i]);
  }
  return f;
}

struct Arm {
  const char* name;
  bool enable_injection;
  bool arm_points;  // probability-0.0 configs on three points
  tsv::HealthCheck health;
};

constexpr Arm kArms[] = {
    {"off", false, false, tsv::HealthCheck::kOff},
    {"points", true, false, tsv::HealthCheck::kOff},
    {"armed", true, true, tsv::HealthCheck::kOff},
    {"health_boundary", false, false, tsv::HealthCheck::kBoundary},
    {"health_full", false, false, tsv::HealthCheck::kFull},
};
constexpr int kArmCount = static_cast<int>(sizeof(kArms) / sizeof(kArms[0]));

/// Applies an arm's injector state process-wide (the measurement toggles
/// global state, which is why arms run strictly one at a time).
void apply(const Arm& a) {
  tsv::FaultInjector& fi = tsv::FaultInjector::instance();
  fi.reset();
  fi.seed(0xf13);
  if (a.arm_points) {
    fi.arm("workspace.alloc", {.probability = 0.0});
    fi.arm("executor.dispatch", {.probability = 0.0});
    fi.arm("kernel.sweep", {.probability = 0.0});
  }
  fi.set_enabled(a.enable_injection);  // after arm(): arm() force-enables
}

tsv::Options arm_options(const Arm& a, tsv::index steps) {
  tsv::Options o;
  o.method = tsv::Method::kTranspose;
  o.steps = steps;
  o.max_threads = 1;
  o.boundary = g_boundary;
  o.stream = g_stream;
  o.health_check = a.health;
  return o;
}

/// One timed pass of an arm: B sequential requests through the (shared)
/// executor — the path that crosses every fault point — returning point
/// updates per second. The grid refill is outside the timed region.
double time_arm(tsv::Executor& ex, const Arm& a, tsv::Grid1D<double>& g,
                tsv::index steps, int batch) {
  apply(a);
  const tsv::Options o = arm_options(a, steps);
  const tsv::StencilSpec spec{.kind = tsv::StencilKind::k1d3p};
  g.fill([](tsv::index x) {
    return 0.3 + 1e-4 * static_cast<double>(x % 97);
  });
  tsv::Timer t;
  for (int b = 0; b < batch; ++b) ex.submit(g, spec, o).get();
  const double sec = std::max(t.seconds(), 1e-9);
  return static_cast<double>(batch) * static_cast<double>(g.nx()) *
         static_cast<double>(steps) / sec;
}

struct ChaosOut {
  double points_per_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_exhausted = 0;
  std::uint64_t degraded_plans = 0;
};

/// Closed-loop batch under a 5% kernel-fault rate: every request must
/// complete (degraded or retried), none may exhaust its budget.
ChaosOut run_chaos(tsv::index nx, tsv::index steps, int requests) {
  tsv::FaultInjector& fi = tsv::FaultInjector::instance();
  fi.reset();
  fi.seed(0xf13);
  fi.arm("kernel.sweep", {.probability = 0.05});

  ChaosOut out;
  {
    tsv::Scheduler sched({.executor = {.gangs = 2, .threads_per_gang = 1},
                          .retry_budget = 6,
                          .retry_backoff_ms = 0.05,
                          .retry_backoff_max_ms = 1.0});
    std::vector<MixSlot> slots(static_cast<std::size_t>(requests));
    // Even ids: every slot a distinct-content 1D request (no coalescing).
    for (int i = 0; i < requests; ++i)
      slots[static_cast<std::size_t>(i)].reset(2 * i, nx, steps);

    std::vector<std::future<tsv::Scheduler::Result>> futs;
    futs.reserve(slots.size());
    tsv::Timer t;
    for (MixSlot& s : slots)
      futs.push_back(sched.submit({s.grid_ref(), s.spec, s.o}));
    for (auto& f : futs) {
      try {
        f.get();
        ++out.completed;
      } catch (...) {
        ++out.failed;
      }
    }
    const double sec = std::max(t.seconds(), 1e-9);
    out.points_per_s = static_cast<double>(requests) *
                       static_cast<double>(nx) * static_cast<double>(steps) /
                       sec;
    const tsv::SchedulerStats st = sched.stats();
    out.retries = st.retries;
    out.retry_exhausted = st.retry_exhausted;
    out.degraded_plans = st.executor.plan_cache.degraded_plans;
  }
  fi.reset();
  fi.set_enabled(false);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  const Flags flags = parse_extra(argc, argv);
  print_header("Figure 13: resilience overhead and degraded-mode throughput");

  const tsv::index nx = cfg.smoke ? 8192 : 65536;
  const tsv::index steps = 64;
  const int batch = cfg.smoke ? 4 : 8;
  const int rounds = cfg.smoke ? 5 : 9;
  const int chaos_requests = cfg.smoke ? 60 : 240;

  JsonSink json(cfg.json_path);
  CsvSink csv(cfg.csv_path, "fig,arm,points_per_s,overhead");

  // ---- overhead arms -------------------------------------------------------
  // One executor for every arm: the plan cache keys on health_check, so each
  // arm gets its own cached plan while sharing gang and pool state. A
  // warmup round builds all five plans before anything is timed.
  double pps[kArmCount] = {};
  {
    tsv::Executor ex({.gangs = 1, .threads_per_gang = 1});
    tsv::Grid1D<double> g(nx, 1);
    for (const Arm& a : kArms) time_arm(ex, a, g, steps, 1);  // warmup
    for (int r = 0; r < rounds; ++r)
      for (int i = 0; i < kArmCount; ++i)
        pps[i] = std::max(pps[i], time_arm(ex, kArms[i], g, steps, batch));
  }
  tsv::FaultInjector::instance().reset();
  tsv::FaultInjector::instance().set_enabled(false);

  bool ok = true;
  std::printf("overhead arms (1d3p, nx=%td, steps=%td, batch=%d, best of %d "
              "rounds)\n",
              nx, steps, batch, rounds);
  std::printf("  %-16s %14s %9s %9s\n", "arm", "Mpoints/s", "overhead",
              "gate");
  for (int i = 0; i < kArmCount; ++i) {
    const double overhead = pps[0] > 0 ? 1.0 - pps[i] / pps[0] : 0.0;
    const double gate = i == 0 ? 0.0
                        : !std::strcmp(kArms[i].name, "health_full")
                            ? flags.max_overhead_full
                            : flags.max_overhead;
    const bool fail = i > 0 && gate > 0 && overhead > gate;
    std::printf("  %-16s %14.1f %8.2f%% %8.2f%% %s\n", kArms[i].name,
                pps[i] / 1e6, overhead * 1e2, gate * 1e2,
                fail ? "FAIL" : "");
    if (fail) {
      std::fprintf(stderr,
                   "fig13: arm %s overhead %.2f%% over gate %.2f%%\n",
                   kArms[i].name, overhead * 1e2, gate * 1e2);
      ok = false;
    }
    csv.row("13,%s,%.0f,%.4f", kArms[i].name, pps[i], overhead);
    json.record(
        "{\"bench\":\"fig13\",\"kind\":\"overhead\",\"arm\":\"%s\","
        "\"stencil\":\"1d3p\",\"nx\":%td,\"steps\":%td,\"dtype\":\"f64\","
        "\"boundary\":\"%s\",\"points_per_s\":%.0f}",
        kArms[i].name, nx, steps, boundary_field_name(), pps[i]);
  }

  // ---- degraded mode -------------------------------------------------------
  const ChaosOut chaos = run_chaos(nx, steps, chaos_requests);
  std::printf(
      "\nchaos arm (kernel.sweep p=0.05, %d requests, retry budget 6)\n"
      "  %14.1f Mpoints/s   completed %llu/%d   retries %llu   "
      "exhausted %llu   degraded plans %llu\n",
      chaos_requests, chaos.points_per_s / 1e6,
      static_cast<unsigned long long>(chaos.completed), chaos_requests,
      static_cast<unsigned long long>(chaos.retries),
      static_cast<unsigned long long>(chaos.retry_exhausted),
      static_cast<unsigned long long>(chaos.degraded_plans));
  if (chaos.completed != static_cast<std::uint64_t>(chaos_requests) ||
      chaos.failed != 0 || chaos.retry_exhausted != 0) {
    std::fprintf(stderr,
                 "fig13: chaos arm lost requests (completed %llu, failed "
                 "%llu, exhausted %llu)\n",
                 static_cast<unsigned long long>(chaos.completed),
                 static_cast<unsigned long long>(chaos.failed),
                 static_cast<unsigned long long>(chaos.retry_exhausted));
    ok = false;
  }
  csv.row("13,chaos,%.0f,0", chaos.points_per_s);
  json.record(
      "{\"bench\":\"fig13\",\"kind\":\"chaos\",\"arm\":\"kernel5pct\","
      "\"stencil\":\"1d3p\",\"nx\":%td,\"steps\":%td,\"dtype\":\"f64\","
      "\"boundary\":\"%s\",\"points_per_s\":%.0f,\"requests\":%d,"
      "\"retries\":%llu}",
      nx, steps, boundary_field_name(), chaos.points_per_s, chaos_requests,
      static_cast<unsigned long long>(chaos.retries));

  return ok ? 0 : 1;
}
