// Figure 10 (beyond the paper) — batched multi-tenant throughput.
//
// Serves a batch of INDEPENDENT small-grid requests two ways and compares
// sustained point-update throughput:
//
//   serial   one thread, one Plan::execute after another (plans prebuilt —
//            this is the best a caller loop can do without the executor)
//   batched  the same requests through tsv::Executor: G gangs pop requests
//            off the shared queue, plans deduplicated by the PlanCache,
//            scratch from per-plan workspace pools
//
// The request mix alternates 1D and 2D heat problems — each small enough
// that a single request cannot use the whole machine, which is exactly the
// regime where request-level parallelism is the only throughput lever.
// Correctness is checked inline: every batched grid must be bit-identical
// to its serial twin, else the record is an error (and the exit nonzero).
//
// JSON identity fields (mode, kind, requests, gangs, dtype) are machine-
// independent so records join across runners in the CI regression gate;
// points_per_s is the metric. A 1-core host shows speedup ~1.0 by
// construction — pass --min-speedup 1.5 (the CI bench-smoke job does, on a
// multi-core runner) to turn the batched/serial ratio into a hard gate.
//
// Extra flags (on top of bench_common's):
//   --requests N      batch size                  (default 16)
//   --gangs N         executor gangs              (default 4)
//   --min-speedup X   fail if batched/serial < X  (default 0 = report only)

#include "bench_common.hpp"

#include <future>
#include <memory>
#include <vector>

namespace {

using namespace bench;

struct Flags {
  int requests = 16;
  int gangs = 4;
  double min_speedup = 0.0;
};

Flags parse_extra(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--requests") && i + 1 < argc)
      f.requests = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--gangs") && i + 1 < argc)
      f.gangs = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc)
      f.min_speedup = std::atof(argv[++i]);
  }
  return f;
}

// The request mix (alternating 1D / 2D heat problems, independent grids)
// lives in bench_common.hpp as MixSlot — fig12_latency drives the same mix
// through the Scheduler, and the two benches must stay comparable.
using Slot = MixSlot;

double elapsed_serial(std::vector<Slot>& slots, tsv::PlanCache& cache) {
  tsv::Timer t;
  for (Slot& s : slots) {
    if (s.g1) {
      auto entry = cache.get(tsv::shape_of(*s.g1), s.spec, s.o);
      entry->plan().execute(*s.g1);
    } else {
      auto entry = cache.get(tsv::shape_of(*s.g2), s.spec, s.o);
      entry->plan().execute(*s.g2);
    }
  }
  return t.seconds();
}

double elapsed_batched(std::vector<Slot>& slots, tsv::Executor& ex) {
  tsv::Timer t;
  std::vector<std::future<void>> futs;
  futs.reserve(slots.size());
  for (Slot& s : slots)
    futs.push_back(s.g1 ? ex.submit(*s.g1, s.spec, s.o)
                        : ex.submit(*s.g2, s.spec, s.o));
  for (auto& f : futs) f.get();
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  const Flags flags = parse_extra(argc, argv);
  print_header("Figure 10: batched executor throughput (mixed small grids)");

  const tsv::index nx = cfg.smoke ? 16384 : 65536;
  const tsv::index steps = cfg.smoke ? 16 : 32;
  const int reps = 3;  // best-of: shared runners stall single shots
  JsonSink json(cfg.json_path);
  CsvSink csv(cfg.csv_path, "fig,mode,requests,gangs,points_per_s");

  std::vector<Slot> serial_slots(flags.requests), batched_slots(flags.requests);
  double total_updates = 0;
  for (int i = 0; i < flags.requests; ++i) {
    serial_slots[i].reset(i, nx, steps);
    total_updates += static_cast<double>(serial_slots[i].points) *
                     static_cast<double>(steps);
  }

  // ---- serial: prebuilt plans, one execute after another -------------------
  tsv::PlanCache cache;
  elapsed_serial(serial_slots, cache);  // warmup: build plans, touch scratch
  double serial_secs = 1e100;
  for (int r = 0; r < reps; ++r) {
    for (int i = 0; i < flags.requests; ++i) serial_slots[i].reset(i, nx, steps);
    serial_secs = std::min(serial_secs, elapsed_serial(serial_slots, cache));
  }
  const double serial_pps = total_updates / serial_secs;

  // ---- batched: same requests through the executor -------------------------
  tsv::Executor ex({.gangs = flags.gangs, .threads_per_gang = 1});
  for (int i = 0; i < flags.requests; ++i) batched_slots[i].reset(i, nx, steps);
  elapsed_batched(batched_slots, ex);  // warmup: plan cache + workspace pools
  double batched_secs = 1e100;
  for (int r = 0; r < reps; ++r) {
    for (int i = 0; i < flags.requests; ++i) batched_slots[i].reset(i, nx, steps);
    batched_secs = std::min(batched_secs, elapsed_batched(batched_slots, ex));
  }
  const double batched_pps = total_updates / batched_secs;

  // ---- correctness: batched must be bit-identical to serial ----------------
  bool ok = true;
  for (int i = 0; i < flags.requests; ++i) {
    serial_slots[i].reset(i, nx, steps);
    batched_slots[i].reset(i, nx, steps);
  }
  elapsed_serial(serial_slots, cache);
  elapsed_batched(batched_slots, ex);
  for (int i = 0; i < flags.requests; ++i) {
    const double diff =
        serial_slots[i].g1
            ? tsv::max_abs_diff(*serial_slots[i].g1, *batched_slots[i].g1)
            : tsv::max_abs_diff(*serial_slots[i].g2, *batched_slots[i].g2);
    if (diff != 0.0) {
      ok = false;
      std::fprintf(stderr, "fig10: request %d diverged (|diff| = %g)\n", i,
                   diff);
      json.record(
          "{\"bench\":\"fig10\",\"kind\":\"small-mix\",\"mode\":\"batched\","
          "\"requests\":%d,\"gangs\":%d,\"error\":true}",
          flags.requests, flags.gangs);
    }
  }

  const double speedup = batched_pps / serial_pps;
  const tsv::ExecutorStats st = ex.stats();
  std::printf("requests = %d (1D nx=%td / 2D %tdx32), steps = %td\n",
              flags.requests, nx, nx / 64, steps);
  std::printf("%-8s %15s\n", "mode", "Mpoints/s");
  std::printf("%-8s %15.1f\n", "serial", serial_pps / 1e6);
  std::printf("%-8s %15.1f   (gangs = %d)\n", "batched", batched_pps / 1e6,
              ex.gangs());
  std::printf("speedup  %15.2fx\n", speedup);
  std::printf(
      "plan cache: %llu hits / %llu misses; workspaces: %llu created, "
      "%llu reused\n",
      static_cast<unsigned long long>(st.plan_cache.hits),
      static_cast<unsigned long long>(st.plan_cache.misses),
      static_cast<unsigned long long>(st.workspaces.created),
      static_cast<unsigned long long>(st.workspaces.reused));

  for (const auto& [mode, pps] :
       {std::pair<const char*, double>{"serial", serial_pps},
        {"batched", batched_pps}}) {
    csv.row("10,%s,%d,%d,%.0f", mode, flags.requests, flags.gangs, pps);
    json.record(
        "{\"bench\":\"fig10\",\"kind\":\"small-mix\",\"mode\":\"%s\","
        "\"requests\":%d,\"gangs\":%d,\"dtype\":\"f64\",\"boundary\":\"%s\","
        "\"steps\":%td,\"points_per_s\":%.0f,\"speedup\":%.3f}",
        mode, flags.requests, flags.gangs, boundary_field_name(), steps, pps,
        speedup);
  }

  if (flags.min_speedup > 0 && speedup < flags.min_speedup) {
    std::fprintf(stderr, "fig10: batched speedup %.2fx below required %.2fx\n",
                 speedup, flags.min_speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
