// Figure 11 (beyond the paper) — sharded-grid scaling.
//
// Decomposes one 2D heat problem into N outermost-axis shards
// (tsv::ShardedGrid + tsv::ShardedPlan) and compares sustained point-update
// throughput against the 1-shard decomposition of the same plan, with the
// per-shard sweeps fanned out over an Executor of N single-threaded gangs:
//
//   strong   fixed global grid, 1 shard vs N shards (ideal speedup = N)
//   weak     ny grows with the shard count (ideal speedup = N, constant
//            per-shard work)
//
// The grid exceeds the LLC so the comparison measures real memory-system
// behaviour, not cache residency. The method is the untiled auto-vectorized
// sweep: per-step slicing (the sharded step loop inserts a ghost exchange
// between steps) costs an untiled method nothing, so the delta is pure
// shard-level parallelism.
//
// Correctness is checked inline: the N-shard result must be BIT-identical
// to the monolithic Plan::execute on the same inputs, else the record is an
// error and the exit nonzero. A 1-core host shows speedup ~1.0 by
// construction — pass --min-speedup 1.0 (the CI bench-smoke job does, on a
// multi-core runner) to turn the N-shard/1-shard ratio into a hard gate.
//
// JSON identity fields (scaling, shards, nx, ny, method, dtype, boundary,
// steps) are machine-independent so records join across runners in the CI
// regression gate; points_per_s is the metric.
//
// Extra flags (on top of bench_common's):
//   --shards N        shard count for the N-shard runs   (default 2)
//   --min-speedup X   fail if strong N/1 ratio < X       (default 0 = report)

#include "bench_common.hpp"

namespace {

using namespace bench;

struct Flags {
  int shards = 2;
  double min_speedup = 0.0;
};

Flags parse_extra(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--shards") && i + 1 < argc)
      f.shards = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc)
      f.min_speedup = std::atof(argv[++i]);
  }
  if (f.shards < 1) f.shards = 1;
  return f;
}

void fill_problem(tsv::Grid2D<double>& g) {
  g.fill([](tsv::index x, tsv::index y) {
    return 0.3 + 1e-4 * static_cast<double>((x + 3 * y) % 97);
  });
}

tsv::Options problem_options(tsv::index steps) {
  tsv::Options o;
  o.method = tsv::Method::kAutoVec;
  o.tiling = tsv::Tiling::kNone;
  o.steps = steps;
  o.boundary = g_boundary;
  o.stream = g_stream;
  return o;
}

/// Best-of-N timed sharded execution: scatter is outside the timer (it is
/// setup, not the steady-state step loop the figure measures).
double best_sharded_secs(const tsv::Grid2D<double>& init,
                         const tsv::ShardedPlan<tsv::Grid2D<double>,
                                                tsv::Stencil2D<1, 3, double>>&
                             plan,
                         tsv::ShardedGrid<tsv::Grid2D<double>>& sg,
                         tsv::Executor& ex, int reps) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    sg.scatter(init);
    tsv::Timer t;
    plan.execute(sg, ex);
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  const Flags flags = parse_extra(argc, argv);
  print_header("Figure 11: sharded-grid scaling (overlapped halo exchange)");

  // Above-LLC working set even at smoke scale: 4096 x 512 doubles is 16 MiB
  // per buffer, 32 MiB with the step's write buffer.
  const tsv::index nx = cfg.smoke ? 4096 : 4096;
  const tsv::index ny_base = cfg.smoke ? 512 : 2048;
  const tsv::index steps = cfg.smoke ? 16 : 32;
  const int reps = 3;  // best-of: shared runners stall single shots
  const auto s = tsv::make_2d5p<double>();
  const tsv::Options o = problem_options(steps);

  JsonSink json(cfg.json_path);
  CsvSink csv(cfg.csv_path, "fig,scaling,shards,nx,ny,points_per_s");

  bool ok = true;
  double strong_speedup = 1.0;

  for (const char* scaling : {"strong", "weak"}) {
    const bool weak = !std::strcmp(scaling, "weak");
    std::printf("%s scaling: nx=%td, steps=%td, method=autovec/f64\n",
                scaling, nx, steps);
    double pps1 = 0.0;
    std::vector<int> counts = {1};
    if (flags.shards > 1) counts.push_back(flags.shards);
    for (int count : counts) {
      const tsv::index ny = weak ? ny_base * count : ny_base;
      tsv::Grid2D<double> init(nx, ny, 1);
      fill_problem(init);

      const tsv::ShardSpec spec{.count = count};
      const auto plan =
          tsv::make_sharded_plan(tsv::shape2d(nx, ny), s, spec, o);
      tsv::ShardedGrid<tsv::Grid2D<double>> sg(init, spec);
      tsv::Executor ex({.gangs = count, .threads_per_gang = 1});

      // In-binary bit-identity vs the monolithic plan, every run.
      {
        tsv::Grid2D<double> mono(nx, ny, 1);
        fill_problem(mono);
        tsv::make_plan(tsv::shape2d(nx, ny), s, o).execute(mono);
        sg.scatter(init);
        plan.execute(sg, ex);  // doubles as the warmup run
        tsv::Grid2D<double> out = init;
        sg.gather(out);
        const double diff = tsv::max_abs_diff(mono, out);
        if (diff != 0.0) {
          ok = false;
          std::fprintf(stderr,
                       "fig11: %s %d-shard result diverged from the "
                       "monolithic plan (|diff| = %g)\n",
                       scaling, count, diff);
          json.record(
              "{\"bench\":\"fig11\",\"kind\":\"sharded-scaling\","
              "\"scaling\":\"%s\",\"shards\":%d,\"error\":true}",
              scaling, count);
          continue;
        }
      }

      const double secs = best_sharded_secs(init, plan, sg, ex, reps);
      const double pps = static_cast<double>(nx) * static_cast<double>(ny) *
                         static_cast<double>(steps) / secs;
      if (count == 1) pps1 = pps;
      const double speedup = pps1 > 0.0 ? pps / pps1 : 1.0;
      if (!weak && count == flags.shards) strong_speedup = speedup;
      std::printf("  %7s  shards=%-2d ny=%-6td %12.1f Mpoints/s  (%.2fx)\n",
                  scaling, count, ny, pps / 1e6, speedup);
      std::fflush(stdout);
      csv.row("11,%s,%d,%td,%td,%.0f", scaling, count, nx, ny, pps);
      json.record(
          "{\"bench\":\"fig11\",\"kind\":\"sharded-scaling\","
          "\"scaling\":\"%s\",\"shards\":%d,\"nx\":%td,\"ny\":%td,"
          "\"method\":\"autovec\",\"dtype\":\"f64\",\"boundary\":\"%s\","
          "\"steps\":%td,\"points_per_s\":%.0f,\"speedup\":%.3f}",
          scaling, count, nx, ny, boundary_field_name(), steps, pps, speedup);
    }
    std::printf("\n");
  }

  if (flags.min_speedup > 0 && strong_speedup < flags.min_speedup) {
    std::fprintf(stderr,
                 "fig11: strong-scaling speedup %.2fx below required %.2fx\n",
                 strong_speedup, flags.min_speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
