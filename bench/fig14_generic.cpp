// Figure 14 — generic-interpreter overhead (tentpole of the generic-stencil
// subsystem, not a paper figure).
//
// Re-expresses every Table-1 stencil kind as a runtime GenericStencil
// (core/generic_stencil.hpp, factory-default weights) and runs it through
// the register-blocked interpreter (Method::kGeneric), next to the same
// problem on a precompiled specialized kernel (multiload — the structural
// twin the interpreter mirrors: one unaligned load per shifted vector).
// Single thread, no tiling, so the ratio isolates interpretation overhead:
// the runtime row loop, the zero-skip branches, and the loss of
// shape-specialized scheduling.
//
// Expected shape: within ~10-30% of multiload on the star kinds (few rows,
// the compile-time tap unroll and register blocking do the work), wider on
// the 27-point box where the interpreter's padded 2R+1 tap span visits
// dead lanes a specialized kernel never emits.

#include "bench_common.hpp"

#include <memory>

namespace {

using namespace bench;

/// Times one interpreter execution of @p prob re-expressed as a
/// GenericStencil; returns GFLOP/s over the SAME flops_per_point as the
/// precompiled kind, so the two columns are directly comparable.
template <typename T>
double time_generic_t(const tsv::Problem& prob, const tsv::Options& o,
                      tsv::index* flops_out, tsv::ResolvedOptions* cfg_out) {
  tsv::StencilSpec spec;
  spec.generic = std::make_shared<const tsv::GenericStencil>(
      tsv::generic_from_kind(prob.kind));
  const int radius = spec.generic->effective_radius();
  const tsv::index flops =
      2 * static_cast<tsv::index>(spec.generic->taps.size()) - 1;
  if (flops_out != nullptr) *flops_out = flops;
  auto fill1 = [](tsv::index x) {
    return T(0.3 + 1e-4 * static_cast<double>(x % 97));
  };
  auto fill2 = [](tsv::index x, tsv::index y) {
    return T(0.3 + 1e-4 * static_cast<double>((x + 3 * y) % 97));
  };
  auto fill3 = [](tsv::index x, tsv::index y, tsv::index z) {
    return T(0.3 + 1e-4 * static_cast<double>((x + 3 * y + 7 * z) % 97));
  };
  const int rank = tsv::stencil_kind_rank(prob.kind);
  tsv::index points = prob.nx;
  tsv::Timer t;
  double sec = 0;
  if (rank == 1) {
    tsv::Grid1D<T> g(prob.nx, radius);
    g.fill(fill1);
    const auto plan = tsv::make_plan(tsv::shape_of(g), spec, o);
    if (cfg_out != nullptr) *cfg_out = plan.config();
    t = tsv::Timer();
    plan.execute(g);
    sec = t.seconds();
  } else if (rank == 2) {
    points = prob.nx * prob.ny;
    tsv::Grid2D<T> g(prob.nx, prob.ny, radius);
    g.fill(fill2);
    const auto plan = tsv::make_plan(tsv::shape_of(g), spec, o);
    if (cfg_out != nullptr) *cfg_out = plan.config();
    t = tsv::Timer();
    plan.execute(g);
    sec = t.seconds();
  } else {
    points = prob.nx * prob.ny * prob.nz;
    tsv::Grid3D<T> g(prob.nx, prob.ny, prob.nz, radius);
    g.fill(fill3);
    const auto plan = tsv::make_plan(tsv::shape_of(g), spec, o);
    if (cfg_out != nullptr) *cfg_out = plan.config();
    t = tsv::Timer();
    plan.execute(g);
    sec = t.seconds();
  }
  return 1e-9 * static_cast<double>(points) * static_cast<double>(o.steps) *
         static_cast<double>(flops) / sec;
}

bool sweep(const Config& cfg, CsvSink& csv, JsonSink& json) {
  bool ok = true;
  std::printf("%-6s %-5s | %12s %12s %9s\n", "kind", "dtype", "multiload",
              "generic", "ratio");
  for (const tsv::Problem& preset : tsv::table1_problems(cfg.paper_scale)) {
    const tsv::Problem p = cfg.smoke ? smoke_problem(preset) : preset;
    for (tsv::Dtype dt : cfg.dtypes) {
      try {
        // Precompiled comparator: the specialized multiload kernel, best of
        // a few reps (smoke timings feed the CI gate; see fig7).
        const int reps = cfg.smoke ? 3 : 1;
        tsv::ResolvedOptions pre_rc;
        const double pre =
            run_problem_best(p, tsv::Method::kMultiLoad, tsv::Tiling::kNone,
                             cfg.isa, 1, reps, 0, dt, cfg.tune, &pre_rc);

        tsv::Options o;
        o.method = tsv::Method::kGeneric;
        o.isa = cfg.isa;
        o.dtype = dt;
        o.steps = p.steps;
        o.threads = 1;
        o.tune = cfg.tune;
        o.stream = g_stream;
        o.boundary = g_boundary;
        tsv::index flops = 0;
        tsv::ResolvedOptions gen_rc;
        double gen = dt == tsv::Dtype::kF32
                         ? time_generic_t<float>(p, o, &flops, &gen_rc)
                         : time_generic_t<double>(p, o, &flops, &gen_rc);
        for (int rep = 1; rep < reps; ++rep)
          gen = std::max(gen, dt == tsv::Dtype::kF32
                                  ? time_generic_t<float>(p, o, &flops, &gen_rc)
                                  : time_generic_t<double>(p, o, &flops,
                                                           &gen_rc));

        std::printf("%-6s %-5s | %12.2f %12.2f %8.2fx\n",
                    tsv::stencil_kind_name(p.kind), tsv::dtype_name(dt), pre,
                    gen, gen / pre);
        std::fflush(stdout);
        csv.row("14,%s,%s,%.3f,%.3f", tsv::stencil_kind_name(p.kind),
                tsv::dtype_name(dt), pre, gen);
        const char* isa = tsv::isa_name(
            cfg.isa == tsv::Isa::kAuto ? tsv::best_isa() : cfg.isa);
        json.record(
            "{\"bench\":\"fig14\",\"kind\":\"%s\",\"method\":\"multiload\","
            "\"isa\":\"%s\",\"dtype\":\"%s\",\"boundary\":\"%s\","
            "\"steps\":%td,\"gflops\":%.3f,\"points_per_s\":%.0f%s}",
            tsv::stencil_kind_name(p.kind), isa, tsv::dtype_name(dt),
            boundary_field_name(), p.steps, pre,
            points_per_sec(pre, flops), json_cfg_fields(pre_rc).c_str());
        json.record(
            "{\"bench\":\"fig14\",\"kind\":\"%s\",\"method\":\"generic\","
            "\"isa\":\"%s\",\"dtype\":\"%s\",\"boundary\":\"%s\","
            "\"steps\":%td,\"gflops\":%.3f,\"points_per_s\":%.0f%s}",
            tsv::stencil_kind_name(p.kind), isa, tsv::dtype_name(dt),
            boundary_field_name(), p.steps, gen,
            points_per_sec(gen, flops), json_cfg_fields(gen_rc).c_str());
      } catch (const std::exception& e) {
        ok = false;
        std::fprintf(stderr, "fig14 %s/%s failed: %s\n",
                     tsv::stencil_kind_name(p.kind), tsv::dtype_name(dt),
                     e.what());
        json.record(
            "{\"bench\":\"fig14\",\"kind\":\"%s\",\"dtype\":\"%s\","
            "\"error\":true}",
            tsv::stencil_kind_name(p.kind), tsv::dtype_name(dt));
      }
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header(
      "Figure 14: generic-interpreter overhead vs precompiled kernels");
  CsvSink csv(cfg.csv_path, "fig,kind,dtype,multiload_gflops,generic_gflops");
  JsonSink json(cfg.json_path);
  return sweep(cfg, csv, json) ? 0 : 1;
}
