// Ablation C (paper §3.2) — block row size m.
//
// m interpolates between the data-reorganization extreme (m = 1: every
// vector set needs assembled neighbours), the paper's choice (m = vl) and
// DLT (m = nx/vl: one global block, no locality). The paper argues m >= 3
// suffices to hide the 4r assembly instructions and fixes m = vl so the
// layout transform stays in registers. This sweep measures the compute
// phase's GFLOP/s against m at two working-set sizes.

#include "bench_common.hpp"
#include "tsv/vectorize/blocked_m.hpp"

namespace {

using namespace bench;

template <typename V>
void sweep(const char* isa, const Config& cfg) {
  constexpr int W = V::width;
  const auto s = tsv::make_1d3p(1.0 / 3.0);
  const auto ladder = storage_ladder();
  const SizeRung rungs[] = {ladder[1], ladder[3]};
  CsvSink csv(cfg.csv_path, "ablation,isa,level,nx,m,gflops");

  for (const SizeRung& r : rungs) {
    // nx must divide by W*m for every m in the sweep (and by nx/W itself).
    const tsv::index nx = tsv::round_up(r.nx, W * 64);
    const tsv::index steps = cfg.paper_scale ? 1000 : 100;
    std::printf("[%s] %-4s nx=%td T=%td\n  %8s %10s\n", isa, r.level, nx,
                steps, "m", "GFLOP/s");
    std::vector<tsv::index> ms = {1, 2, 4, W, 16, 64, nx / W};
    std::sort(ms.begin(), ms.end());
    ms.erase(std::unique(ms.begin(), ms.end()), ms.end());
    for (tsv::index m : ms) {
      if (m > nx / W || nx % (W * m) != 0) continue;
      tsv::Grid1D<double> g(nx, 1);
      g.fill([](tsv::index x) { return 0.25 + 1e-4 * static_cast<double>(x % 101); });
      tsv::Timer t;
      tsv::blocked_m_run<V, 1>(g, s, steps, m);
      const double gf = 1e-9 * static_cast<double>(nx) *
                        static_cast<double>(steps) *
                        static_cast<double>(s.flops_per_point) / t.seconds();
      std::printf("  %8td %10.2f%s\n", m, gf,
                  m == W ? "   <- paper's m = vl" : (m == nx / W ? "   <- DLT" : ""));
      csv.row("m,%s,%s,%td,%td,%.3f", isa, r.level, nx, m, gf);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Ablation: block row size m (1D heat, single thread)");
#if defined(__AVX2__)
  sweep<tsv::Vec<double, 4>>("avx2", cfg);
#endif
#if defined(__AVX512F__)
  sweep<tsv::Vec<double, 8>>("avx512", cfg);
#endif
  return 0;
}
