// Figure 8 — multicore cache-blocking experiments (paper §4.3).
//
// 1D 3-point heat with temporal tiling on all cores. Four contenders:
// SDSL (DLT + split tiling), Tessellation (+compiler vectorization),
// Our (transpose layout + tessellation), Our (2 steps). Two spatial blocking
// sizes are compared — an L1-sized block (paper's 2000, here 2048) and an
// L2-sized block (16384) — across problem sizes in L3 and main memory, for
// T and 10T (pass --long for only the 10x variant).
//
// Expected shape (paper): Our(2stp) > Our > Tessellation > SDSL everywhere;
// L1 blocking beats L2 blocking; the gap grows when the problem spills L3.

#include "bench_common.hpp"

namespace {

using namespace bench;

struct Blocking {
  const char* name;
  tsv::index bx, bt;
};

void sweep(tsv::index steps, const Config& cfg) {
  const Blocking blockings[] = {{"L1", 2048, 128}, {"L2", 16384, 512}};
  const auto ladder = storage_ladder();
  const SizeRung rungs[] = {ladder[2], ladder[3]};  // L3 and memory

  CsvSink csv(cfg.csv_path, "fig,steps,blocking,level,nx,method,gflops");
  std::printf("T = %td, %d threads\n", steps, cfg.threads);
  std::printf("%-4s %-5s %10s |", "blk", "level", "nx");
  for (const auto& c : contenders()) std::printf(" %12s", c.name);
  std::printf("\n");

  for (const Blocking& blk : blockings)
    for (const SizeRung& rung : rungs) {
      const tsv::index nx = cfg.paper_scale ? 10240000 : rung.nx;
      tsv::Problem p{.name = "1d3p", .kind = tsv::StencilKind::k1d3p,
                     .nx = nx, .ny = 1, .nz = 1, .steps = steps,
                     .bx = blk.bx, .by = 1, .bz = 1, .bt = blk.bt};
      std::printf("%-4s %-5s %10td |", blk.name, rung.level, nx);
      for (const auto& c : contenders()) {
        const double gf = run_problem_best(p, c.method, c.tiling, tsv::best_isa(),
                                      cfg.threads);
        std::printf(" %12.1f", gf);
        std::fflush(stdout);
        csv.row("8,%td,%s,%s,%td,%s,%.3f", steps, blk.name, rung.level, nx,
                c.name, gf);
      }
      std::printf("\n");
    }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Figure 8: multicore cache-blocking (1D heat, tiled)");
  const tsv::index base = cfg.paper_scale ? 1000 : 240;
  if (!cfg.long_t) sweep(base, cfg);  // Fig. 8(a)
  sweep(base * 10, cfg);              // Fig. 8(b)
  return 0;
}
