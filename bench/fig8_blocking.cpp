// Figure 8 — multicore cache-blocking experiments (paper §4.3).
//
// 1D 3-point heat with temporal tiling on all cores. Four contenders:
// SDSL (DLT + split tiling), Tessellation (+compiler vectorization),
// Our (transpose layout + tessellation), Our (2 steps). Blocking rows:
// the plan's fixed-default heuristics, an L1-sized block (paper's 2000,
// here 2048), an L2-sized block (16384) — and, when --tune is passed, a
// "tuned" row where the autotuner picks the blocks (plan-time trials;
// the timer never sees them). Sweeps run across problem sizes in L3 and
// main memory, each requested dtype, for T and 10T (--long for only the
// 10x variant).
//
// Expected shape (paper): Our(2stp) > Our > Tessellation > SDSL everywhere;
// L1 blocking beats L2 blocking; the gap grows when the problem spills L3.
// The tuned row must match or beat the default row for every contender —
// the CI-facing acceptance check for the autotuner.

#include "bench_common.hpp"

namespace {

using namespace bench;

struct Blocking {
  const char* name;
  tsv::index bx, bt;
  tsv::Tune tune;
};

void sweep(tsv::index steps, const Config& cfg, CsvSink& csv, JsonSink& json,
           tsv::Dtype dt) {
  std::vector<Blocking> blockings = {
      {"dflt", 0, 0, tsv::Tune::kOff},
      {"L1", 2048, 128, tsv::Tune::kOff},
      {"L2", 16384, 512, tsv::Tune::kOff},
  };
  if (cfg.tune != tsv::Tune::kOff)
    blockings.push_back({"tuned", 0, 0, cfg.tune});
  const auto ladder = storage_ladder(cfg.smoke, dt);
  std::vector<SizeRung> rungs;
  if (cfg.nx_override > 0)
    rungs = {{"custom", cfg.nx_override}};
  else if (cfg.smoke)
    rungs = {ladder[0]};
  else
    rungs = {ladder[2], ladder[3]};  // L3 and memory

  std::printf("T = %td, %d threads, dtype = %s\n", steps, cfg.threads,
              tsv::dtype_name(dt));
  std::printf("%-5s %-5s %10s |", "blk", "level", "nx");
  for (const auto& c : contenders()) std::printf(" %12s", c.name);
  std::printf("\n");

  for (const Blocking& blk : blockings)
    for (const SizeRung& rung : rungs) {
      const tsv::index nx = cfg.paper_scale ? 10240000 : rung.nx;
      tsv::Problem p{.name = "1d3p", .kind = tsv::StencilKind::k1d3p,
                     .nx = nx, .ny = 1, .nz = 1, .steps = steps,
                     .bx = blk.bx, .by = 1, .bz = 1, .bt = blk.bt};
      std::printf("%-5s %-5s %10td |", blk.name, rung.level, nx);
      for (const auto& c : contenders()) {
        tsv::ResolvedOptions rc;
        const double gf =
            run_problem_best(p, c.method, c.tiling, tsv::best_isa(),
                             cfg.threads, 3, 0, dt, blk.tune, &rc);
        std::printf(" %12.1f", gf);
        std::fflush(stdout);
        csv.row("8,%td,%s,%s,%td,%s,%s,%.3f", steps, blk.name, rung.level,
                nx, c.name, tsv::dtype_name(dt), gf);
        json.record(
            "{\"bench\":\"fig8\",\"steps\":%td,\"blocking\":\"%s\","
            "\"level\":\"%s\",\"nx\":%td,\"method\":\"%s\",\"isa\":\"%s\","
            "\"dtype\":\"%s\",\"gflops\":%.3f%s}",
            steps, blk.name, rung.level, nx, c.name,
            tsv::isa_name(tsv::best_isa()), tsv::dtype_name(dt), gf,
            json_cfg_fields(rc).c_str());
      }
      std::printf("\n");
    }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Figure 8: multicore cache-blocking (1D heat, tiled)");
  CsvSink csv(cfg.csv_path,
              "fig,steps,blocking,level,nx,method,dtype,gflops");
  JsonSink json(cfg.json_path);
  const tsv::index base = cfg.smoke ? 8 : cfg.paper_scale ? 1000 : 240;
  for (tsv::Dtype dt : cfg.dtypes) {
    if (cfg.smoke || !cfg.long_t) sweep(base, cfg, csv, json, dt);  // 8(a)
    if (!cfg.smoke) sweep(base * 10, cfg, csv, json, dt);           // 8(b)
  }
  return 0;
}
