// Ablation B (paper §3.3) — time-loop unroll factor K.
//
// The paper fixes K = 2 by a register-file argument ((vl+1)*k registers plus
// coefficients must fit vl*4 registers). This sweep runs the 1D pipeline
// with K = 1, 2, 3, 4 at an L3-resident and a memory-resident size: the
// flops/byte ratio grows with K, so memory-bound sizes should improve up to
// the point where the register window spills.

#include "bench_common.hpp"
#include "tsv/vectorize/unroll_jam.hpp"

namespace {

using namespace bench;

template <typename V, int K>
double run_k(tsv::index nx, tsv::index steps) {
  const auto s = tsv::make_1d3p(1.0 / 3.0);
  tsv::Grid1D<double> g(nx, 1);
  g.fill([](tsv::index x) { return 0.25 + 1e-4 * static_cast<double>(x % 101); });
  tsv::Timer t;
  tsv::unroll_jam_run<V, 1, K>(g, s, steps);
  return 1e-9 * static_cast<double>(nx) * static_cast<double>(steps) *
         static_cast<double>(s.flops_per_point) / t.seconds();
}

template <typename V>
void sweep(const char* isa, const Config& cfg) {
  const auto ladder = storage_ladder();
  const SizeRung rungs[] = {ladder[1], ladder[2], ladder[3]};
  std::printf("[%s]\n%-5s %10s | %9s %9s %9s %9s\n", isa, "level", "nx",
              "K=1", "K=2", "K=3", "K=4");
  CsvSink csv(cfg.csv_path, "ablation,isa,level,nx,k,gflops");
  for (const SizeRung& r : rungs) {
    const tsv::index steps = cfg.paper_scale ? 1000 : 120;
    std::printf("%-5s %10td |", r.level, r.nx);
    const double g1 = run_k<V, 1>(r.nx, steps);
    const double g2 = run_k<V, 2>(r.nx, steps);
    const double g3 = run_k<V, 3>(r.nx, steps);
    const double g4 = run_k<V, 4>(r.nx, steps);
    std::printf(" %9.2f %9.2f %9.2f %9.2f\n", g1, g2, g3, g4);
    csv.row("unroll,%s,%s,%td,1,%.3f", isa, r.level, r.nx, g1);
    csv.row("unroll,%s,%s,%td,2,%.3f", isa, r.level, r.nx, g2);
    csv.row("unroll,%s,%s,%td,3,%.3f", isa, r.level, r.nx, g3);
    csv.row("unroll,%s,%s,%td,4,%.3f", isa, r.level, r.nx, g4);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Ablation: unroll-and-jam factor K (1D heat, single thread)");
#if defined(__AVX2__)
  sweep<tsv::Vec<double, 4>>("avx2", cfg);
#endif
#if defined(__AVX512F__)
  sweep<tsv::Vec<double, 8>>("avx512", cfg);
#endif
  return 0;
}
