// Figure 12 (beyond the paper) — open-loop serving latency under load.
//
// Drives the Scheduler (core/scheduler.hpp) with an open-loop Poisson
// arrival process over a mixed workload:
//
//   interactive  small 1D heat requests (sub-millisecond service), 50 ms
//                deadline — the latency-sensitive class
//   batch        2D heat requests calibrated to ~tens of milliseconds of
//                service each, sized so the batch class alone offers ~0.8
//                utilization of the (default) single gang — bursts form
//                real queues, which is the regime deadline scheduling is for
//
// Open-loop means arrivals do NOT wait for completions: the driver submits
// at the scheduled instant no matter how far behind the server is, so
// queueing delay shows up in the latency distribution instead of being
// absorbed by a closed feedback loop (the standard methodology for tail
// latency — a closed loop coordinates omissions away).
//
// Every run executes TWICE: once under SchedPolicy::kDeadline (the product
// configuration) and once under SchedPolicy::kFifo as the control arm —
// identical arrivals, grids, admission and accounting, no reordering. The
// binary FAILS unless the deadline policy's interactive p99 beats FIFO's
// (the whole point of the scheduler, asserted in-binary), and optionally
// enforces absolute gates for CI:
//
//   --max-p99-ms X      fail if deadline-policy interactive p99 > X ms
//   --max-shed-rate X   fail if deadline-policy shed+rejected fraction > X
//   --min-fifo-ratio X  fail if (FIFO p99) / (deadline p99) < X  (default 1,
//                       i.e. the in-binary assertion; CI passes a margin)
//   --gangs N           scheduler gangs (default 1: one server makes the
//                       dispatch policy the only variable)
//
// Batch service time is CALIBRATED (step count chosen from a timed probe),
// so offered utilization — and therefore the shape of the experiment — is
// machine-independent even though absolute latencies are not. Calibrated
// values and arrival counts are deliberately kept out of the JSON identity
// fields: records join across runners on (bench, kind, policy, class,
// gangs, dtype, boundary) alone, and everything measured (p50/p95/p99,
// shed, requests, req_per_s) is NON_IDENTITY in compare_baseline.py. The
// gate metric is req_per_s — completions over wall time, which an open-loop
// driver pins to the (fixed) arrival rate on ANY machine that keeps up, so
// compare_baseline.py treats it as load-bound: compared as an absolute
// ratio, not normalized by the machine-speed median.

#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace {

using namespace bench;

struct Flags {
  int gangs = 1;
  double max_p99_ms = 0.0;     // 0 = no absolute gate
  double max_shed_rate = -1.0; // <0 = no gate
  double min_fifo_ratio = 1.0; // in-binary assertion floor
};

Flags parse_extra(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--gangs") && i + 1 < argc)
      f.gangs = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--max-p99-ms") && i + 1 < argc)
      f.max_p99_ms = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--max-shed-rate") && i + 1 < argc)
      f.max_shed_rate = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--min-fifo-ratio") && i + 1 < argc)
      f.min_fifo_ratio = std::atof(argv[++i]);
  }
  return f;
}

struct Scenario {
  double horizon_s;
  double rate_interactive_hz;
  double rate_batch_hz;
  double batch_target_s;   ///< calibrated per-request batch service time
  double deadline_i_ms;
  double deadline_b_ms;
  std::size_t queue_capacity;
  tsv::index nx_i, nx_b;
  tsv::index steps_i;
};

struct Arrival {
  double t;
  tsv::ServiceClass cls;
};

/// Two independent Poisson streams merged into one time-sorted schedule.
std::vector<Arrival> make_schedule(const Scenario& sc) {
  std::vector<Arrival> plan;
  for (double t : poisson_arrivals(sc.rate_interactive_hz, sc.horizon_s, 101))
    plan.push_back({t, tsv::ServiceClass::kInteractive});
  for (double t : poisson_arrivals(sc.rate_batch_hz, sc.horizon_s, 202))
    plan.push_back({t, tsv::ServiceClass::kBatch});
  std::sort(plan.begin(), plan.end(),
            [](const Arrival& a, const Arrival& b) { return a.t < b.t; });
  return plan;
}

/// Picks the batch step count whose service time lands on target_s, from a
/// timed single-threaded probe (the gang runs requests single-threaded too,
/// threads_per_gang = 1). Second run timed: the first pays first-touch.
tsv::index calibrate_batch_steps(tsv::index nx_b, double target_s) {
  const tsv::index probe_steps = 64;
  MixSlot s;
  s.reset(1, nx_b, probe_steps);
  s.o.max_threads = 1;
  const auto plan = tsv::make_plan(tsv::shape_of(*s.g2), s.spec, s.o);
  plan.execute(*s.g2);
  s.reset(1, nx_b, probe_steps);
  tsv::Timer t;
  plan.execute(*s.g2);
  const double sec = std::max(t.seconds(), 1e-6);
  const double scaled =
      static_cast<double>(probe_steps) * target_s / sec;
  return std::clamp<tsv::index>(static_cast<tsv::index>(scaled), 16, 4096);
}

/// One class's outcome over a run.
struct ClassOut {
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;  ///< OverloadError observed through the future
  std::uint64_t missed = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0, mean_ms = 0;
  double req_per_s = 0;
};

struct RunOut {
  ClassOut cls[tsv::kServiceClasses];
  std::uint64_t coalesced = 0;
  double wall_s = 0;
};

/// Grid slots recycled across requests of one class. A slot is reusable
/// once its future resolved; the vector may reallocate while requests are
/// in flight — safe, the grids live behind unique_ptrs and GridRef points
/// at the heap objects, not the slots.
struct Pool {
  struct Pending {
    std::future<tsv::Scheduler::Result> fut;
    std::size_t slot;
  };
  std::vector<MixSlot> slots;
  std::vector<Pending> busy;
  std::vector<std::size_t> free;
};

void settle(Pool::Pending& p, ClassOut& out) {
  try {
    const tsv::Scheduler::Result r = p.fut.get();
    ++out.completed;
    if (r.deadline_missed) ++out.missed;
  } catch (const tsv::OverloadError&) {
    ++out.shed;
  }
}

/// Reaps every resolved future, then returns a free slot (growing the pool
/// when every slot is in flight — bounded by queue capacity + gangs, since
/// overflow submissions resolve immediately as OverloadError).
std::size_t acquire(Pool& pool, ClassOut& out) {
  for (std::size_t i = 0; i < pool.busy.size();) {
    if (pool.busy[i].fut.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      settle(pool.busy[i], out);
      pool.free.push_back(pool.busy[i].slot);
      pool.busy[i] = std::move(pool.busy.back());
      pool.busy.pop_back();
    } else {
      ++i;
    }
  }
  if (pool.free.empty()) {
    pool.slots.emplace_back();
    return pool.slots.size() - 1;
  }
  const std::size_t s = pool.free.back();
  pool.free.pop_back();
  return s;
}

RunOut drive(tsv::SchedPolicy policy, const Scenario& sc,
             const std::vector<Arrival>& schedule, tsv::index steps_b,
             int gangs) {
  tsv::SchedulerConfig cfg;
  cfg.executor = {.gangs = gangs, .threads_per_gang = 1};
  cfg.queue_capacity = sc.queue_capacity;
  cfg.policy = policy;
  tsv::Scheduler sched(cfg);

  // Warmup: build both plans through the scheduler so plan construction
  // (validation, layout binding, workspace sizing) never lands in a
  // measured latency.
  {
    MixSlot w;
    w.reset(0, sc.nx_i, sc.steps_i);
    sched.submit({w.grid_ref(), w.spec, w.o}).get();
    w.reset(1, sc.nx_b, steps_b);
    sched.submit({w.grid_ref(), w.spec, w.o}).get();
  }

  Pool pools[tsv::kServiceClasses];
  RunOut out;
  int fill_seq[tsv::kServiceClasses] = {0, 0};

  tsv::Timer wall;
  const auto t0 = tsv::Scheduler::Clock::now();
  for (const Arrival& a : schedule) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<tsv::Scheduler::Clock::duration>(
                 std::chrono::duration<double>(a.t)));
    const bool inter = a.cls == tsv::ServiceClass::kInteractive;
    const int c = static_cast<int>(a.cls);
    ClassOut& co = out.cls[c];
    ++co.arrivals;
    Pool& pool = pools[c];
    const std::size_t si = acquire(pool, co);
    MixSlot& slot = pool.slots[si];
    // Distinct fill ids => distinct grid contents => no accidental
    // coalescing: every arrival is real work (even id = 1D, odd = 2D).
    slot.reset(2 * fill_seq[c]++ + (inter ? 0 : 1),
               inter ? sc.nx_i : sc.nx_b, inter ? sc.steps_i : steps_b);
    pool.busy.push_back(
        {sched.submit({slot.grid_ref(), slot.spec, slot.o, a.cls,
                       inter ? sc.deadline_i_ms : sc.deadline_b_ms,
                       inter ? "dash" : "etl"}),
         si});
  }
  for (Pool& pool : pools)
    for (Pool::Pending& p : pool.busy)
      settle(p, out.cls[&pool - pools]);
  out.wall_s = wall.seconds();

  const tsv::SchedulerStats st = sched.stats();
  out.coalesced = st.coalesced;
  for (int c = 0; c < tsv::kServiceClasses; ++c) {
    const tsv::LatencyHistogram& h =
        st.latency_of(static_cast<tsv::ServiceClass>(c));
    ClassOut& co = out.cls[c];
    co.p50_ms = h.quantile(0.50) * 1e3;
    co.p95_ms = h.quantile(0.95) * 1e3;
    co.p99_ms = h.quantile(0.99) * 1e3;
    co.mean_ms = h.mean_seconds() * 1e3;
    co.req_per_s =
        static_cast<double>(co.completed) / std::max(out.wall_s, 1e-9);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  const Flags flags = parse_extra(argc, argv);
  print_header("Figure 12: open-loop serving latency (deadline vs FIFO)");

  Scenario sc;
  sc.nx_i = 4096;
  sc.nx_b = 65536;  // 2D 1024x32
  sc.steps_i = 16;
  sc.deadline_i_ms = 50.0;
  sc.deadline_b_ms = 2000.0;
  if (cfg.smoke) {
    sc.horizon_s = 2.0;
    sc.rate_interactive_hz = 40.0;
    sc.rate_batch_hz = 40.0;
    sc.batch_target_s = 0.020;  // x 40/s = 0.8 offered utilization
    sc.queue_capacity = 48;
  } else {
    sc.horizon_s = 8.0;
    sc.rate_interactive_hz = 60.0;
    sc.rate_batch_hz = 32.0;
    sc.batch_target_s = 0.025;  // x 32/s = 0.8 offered utilization
    sc.queue_capacity = 64;
  }

  const tsv::index steps_b = calibrate_batch_steps(sc.nx_b, sc.batch_target_s);
  const std::vector<Arrival> schedule = make_schedule(sc);
  std::printf(
      "arrivals: %zu over %.1fs (interactive %.0f/s, batch %.0f/s), "
      "batch steps = %td (~%.0f ms target), gangs = %d\n\n",
      schedule.size(), sc.horizon_s, sc.rate_interactive_hz, sc.rate_batch_hz,
      steps_b, sc.batch_target_s * 1e3, flags.gangs);

  JsonSink json(cfg.json_path);
  CsvSink csv(cfg.csv_path,
              "fig,policy,class,requests,p50_ms,p99_ms,shed,missed");

  const char* policy_names[] = {"edf", "fifo"};
  RunOut runs[2];
  for (int p = 0; p < 2; ++p) {
    runs[p] = drive(p == 0 ? tsv::SchedPolicy::kDeadline
                           : tsv::SchedPolicy::kFifo,
                    sc, schedule, steps_b, flags.gangs);
    std::printf("policy %-5s (wall %.2fs, coalesced %llu)\n", policy_names[p],
                runs[p].wall_s,
                static_cast<unsigned long long>(runs[p].coalesced));
    std::printf("  %-12s %9s %9s %9s %9s %7s %6s %6s\n", "class", "p50 ms",
                "p95 ms", "p99 ms", "mean ms", "done", "shed", "miss");
    for (int c = 0; c < tsv::kServiceClasses; ++c) {
      const ClassOut& co = runs[p].cls[c];
      const char* cname =
          tsv::service_class_name(static_cast<tsv::ServiceClass>(c));
      std::printf("  %-12s %9.2f %9.2f %9.2f %9.2f %7llu %6llu %6llu\n",
                  cname, co.p50_ms, co.p95_ms, co.p99_ms, co.mean_ms,
                  static_cast<unsigned long long>(co.completed),
                  static_cast<unsigned long long>(co.shed),
                  static_cast<unsigned long long>(co.missed));
      csv.row("12,%s,%s,%llu,%.3f,%.3f,%llu,%llu", policy_names[p], cname,
              static_cast<unsigned long long>(co.arrivals), co.p50_ms,
              co.p99_ms, static_cast<unsigned long long>(co.shed),
              static_cast<unsigned long long>(co.missed));
      json.record(
          "{\"bench\":\"fig12\",\"kind\":\"openloop\",\"policy\":\"%s\","
          "\"class\":\"%s\",\"gangs\":%d,\"dtype\":\"f64\","
          "\"boundary\":\"%s\",\"requests\":%llu,\"p50_ms\":%.3f,"
          "\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"mean_ms\":%.3f,"
          "\"deadline_missed\":%llu,\"shed\":%llu,\"shed_rate\":%.4f,"
          "\"coalesced\":%llu,\"req_per_s\":%.2f}",
          policy_names[p], cname, flags.gangs, boundary_field_name(),
          static_cast<unsigned long long>(co.arrivals), co.p50_ms, co.p95_ms,
          co.p99_ms, co.mean_ms, static_cast<unsigned long long>(co.missed),
          static_cast<unsigned long long>(co.shed),
          co.arrivals ? static_cast<double>(co.shed) /
                            static_cast<double>(co.arrivals)
                      : 0.0,
          static_cast<unsigned long long>(runs[p].coalesced),
          co.req_per_s);
    }
    std::printf("\n");
  }

  // ---- gates ---------------------------------------------------------------
  bool ok = true;
  const ClassOut& edf_i =
      runs[0].cls[static_cast<int>(tsv::ServiceClass::kInteractive)];
  const ClassOut& fifo_i =
      runs[1].cls[static_cast<int>(tsv::ServiceClass::kInteractive)];
  const double ratio = edf_i.p99_ms > 0 ? fifo_i.p99_ms / edf_i.p99_ms : 0.0;
  std::printf("interactive p99: deadline %.2f ms vs FIFO %.2f ms "
              "(ratio %.2fx)\n",
              edf_i.p99_ms, fifo_i.p99_ms, ratio);
  if (ratio < std::max(flags.min_fifo_ratio, 1.0)) {
    // The scheduler's reason to exist, asserted every run: reordering must
    // buy the interactive class tail latency vs the FIFO control arm.
    std::fprintf(stderr,
                 "fig12: FIFO/deadline interactive p99 ratio %.2f below "
                 "required %.2f\n",
                 ratio, std::max(flags.min_fifo_ratio, 1.0));
    ok = false;
  }
  if (flags.max_p99_ms > 0 && edf_i.p99_ms > flags.max_p99_ms) {
    std::fprintf(stderr, "fig12: interactive p99 %.2f ms over gate %.2f ms\n",
                 edf_i.p99_ms, flags.max_p99_ms);
    ok = false;
  }
  if (flags.max_shed_rate >= 0) {
    std::uint64_t shed = 0, arrivals = 0;
    for (const ClassOut& co : runs[0].cls) {
      shed += co.shed;
      arrivals += co.arrivals;
    }
    const double rate =
        arrivals ? static_cast<double>(shed) / static_cast<double>(arrivals)
                 : 0.0;
    if (rate > flags.max_shed_rate) {
      std::fprintf(stderr, "fig12: shed rate %.4f over gate %.4f\n", rate,
                   flags.max_shed_rate);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
