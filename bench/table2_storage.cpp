// Table 2 — performance improvements per storage level, single thread,
// block-free (paper §4.2). Speedups are normalized to the multiple-loads
// method, exactly as the paper's Table 2 columns:
//     | Data Reorganization | DLT | Our | Our (2 steps) |
//
// Expected shape (paper): reorg ~1.1x, DLT ~1.35x (strong in L1, <1 in L3),
// Our ~2x, Our-2step ~2.8x on average.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Table 2: speedup over multiload per storage level");

  const tsv::index steps = cfg.paper_scale ? 1000 : (cfg.long_t ? 1000 : 100);
  const auto s = tsv::make_1d3p(1.0 / 3.0);

  // Registry-enumerated method list, normalized to multiload (the paper's
  // baseline column): every untiled vectorized method the registry claims,
  // with multiload moved to the front.
  std::vector<tsv::Method> methods = {tsv::Method::kMultiLoad};
  for (tsv::Method m : tsv::supported_methods(tsv::Tiling::kNone, 1))
    if (m != tsv::Method::kScalar && m != tsv::Method::kAutoVec &&
        m != tsv::Method::kMultiLoad)
      methods.push_back(m);
  const std::size_t n = methods.size();

  CsvSink csv(cfg.csv_path, "table,level,method,speedup_vs_multiload");
  std::printf("%-7s |", "level");
  for (std::size_t k = 1; k < n; ++k)
    std::printf(" %12s", tsv::method_name(methods[k]));
  std::printf("\n");

  std::vector<double> mean(n, 0.0);
  int nlev = 0;
  for (const SizeRung& rung : storage_ladder()) {
    std::vector<double> gf(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      tsv::Grid1D<double> g(rung.nx, 1);
      g.fill([](tsv::index x) { return 0.25 + 1e-4 * static_cast<double>(x % 101); });
      tsv::Options o;
      o.method = methods[i];
      o.isa = tsv::best_isa();
      o.steps = steps;
      gf[i] = time_run(g, s, o, rung.nx);
    }
    std::printf("%-7s |", rung.level);
    for (std::size_t k = 1; k < n; ++k) {
      const double sp = gf[k] / gf[0];
      mean[k] += sp;
      std::printf(" %11.2fx", sp);
      csv.row("2,%s,%s,%.3f", rung.level, tsv::method_name(methods[k]), sp);
    }
    std::printf("\n");
    ++nlev;
  }
  std::printf("%-7s |", "mean");
  for (std::size_t k = 1; k < n; ++k) std::printf(" %11.2fx", mean[k] / nlev);
  std::printf("\n");
  // Keyed by method name so registry additions/reorders cannot misalign it.
  std::printf("(paper means: reorg 1.11x, dlt 1.35x, transpose 1.98x, "
              "transpose-uj2 2.81x)\n");
  return 0;
}
