// Table 2 — performance improvements per storage level, single thread,
// block-free (paper §4.2). Speedups are normalized to the multiple-loads
// method, exactly as the paper's Table 2 columns:
//     | Data Reorganization | DLT | Our | Our (2 steps) |
//
// Expected shape (paper): reorg ~1.1x, DLT ~1.35x (strong in L1, <1 in L3),
// Our ~2x, Our-2step ~2.8x on average.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Table 2: speedup over multiload per storage level");

  const tsv::index steps = cfg.paper_scale ? 1000 : (cfg.long_t ? 1000 : 100);
  const auto s = tsv::make_1d3p(1.0 / 3.0);
  constexpr tsv::Method kMethods[] = {
      tsv::Method::kMultiLoad, tsv::Method::kReorg, tsv::Method::kDlt,
      tsv::Method::kTranspose, tsv::Method::kTransposeUJ};

  CsvSink csv(cfg.csv_path, "table,level,method,speedup_vs_multiload");
  std::printf("%-7s | %8s %8s %8s %8s   (paper: 1.11x 1.35x 1.98x 2.81x mean)\n",
              "level", "reorg", "dlt", "our", "our2");

  double mean[5] = {0, 0, 0, 0, 0};
  int nlev = 0;
  for (const SizeRung& rung : storage_ladder()) {
    double gf[5] = {0, 0, 0, 0, 0};
    int i = 0;
    for (tsv::Method m : kMethods) {
      tsv::Grid1D<double> g(rung.nx, 1);
      g.fill([](tsv::index x) { return 0.25 + 1e-4 * static_cast<double>(x % 101); });
      tsv::Options o;
      o.method = m;
      o.isa = tsv::best_isa();
      o.steps = steps;
      gf[i++] = time_run(g, s, o, rung.nx);
    }
    std::printf("%-7s |", rung.level);
    for (int k = 1; k < 5; ++k) {
      const double sp = gf[k] / gf[0];
      mean[k] += sp;
      std::printf(" %7.2fx", sp);
      csv.row("2,%s,%s,%.3f", rung.level, tsv::method_name(kMethods[k]), sp);
    }
    std::printf("\n");
    ++nlev;
  }
  std::printf("%-7s |", "mean");
  for (int k = 1; k < 5; ++k) std::printf(" %7.2fx", mean[k] / nlev);
  std::printf("\n");
  return 0;
}
