// Figure 9 — scalability of all six stencils with AVX2 and AVX-512
// instructions (paper §4.4): GFLOP/s vs core count for SDSL, Tessellation,
// Our and Our (2 steps), on the Table-1 problems.
//
// Expected shape (paper): near-linear scaling in 1D for every method; the
// ordering Our(2stp) > Our > Tessellation > SDSL at every core count;
// scalability flattens with growing dimensionality/order; AVX-512 curves sit
// above AVX-2 for the same method.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Figure 9: scalability across stencils and ISAs");

  const int maxc = cfg.threads;
  std::vector<int> cores;
  for (int c = 1; c < maxc; c *= 2) cores.push_back(c);
  cores.push_back(maxc);

  CsvSink csv(cfg.csv_path, "fig,stencil,isa,method,cores,gflops");

  for (const tsv::Problem& p : tsv::table1_problems(cfg.paper_scale)) {
    for (tsv::Isa isa : {tsv::Isa::kAvx2, tsv::Isa::kAvx512}) {
      if (!tsv::isa_supported(isa)) continue;
      std::printf("%s (%s), %tdx%tdx%td, T=%td, block %tdx%tdx%td/bt=%td\n",
                  p.name.c_str(), tsv::isa_name(isa), p.nx, p.ny, p.nz,
                  p.steps, p.bx, p.by, p.bz, p.bt);
      std::printf("  %-13s", "cores:");
      for (int c : cores) std::printf(" %8d", c);
      std::printf("\n");
      for (const auto& con : contenders()) {
        std::printf("  %-13s", con.name);
        for (int c : cores) {
          const double gf = run_problem_best(p, con.method, con.tiling, isa, c);
          std::printf(" %8.1f", gf);
          std::fflush(stdout);
          csv.row("9,%s,%s,%s,%d,%.3f", p.name.c_str(), tsv::isa_name(isa),
                  con.name, c, gf);
        }
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
  return 0;
}
