// Figure 9 — scalability of all six stencils with AVX2 and AVX-512
// instructions (paper §4.4): GFLOP/s vs core count for SDSL, Tessellation,
// Our and Our (2 steps), on the Table-1 problems.
//
// Expected shape (paper): near-linear scaling in 1D for every method; the
// ordering Our(2stp) > Our > Tessellation > SDSL at every core count;
// scalability flattens with growing dimensionality/order; AVX-512 curves sit
// above AVX-2 for the same method.
//
// --json emits one record per (stencil, isa, method, cores) measurement
// with the same schema fields as fig7/fig8 (method/tiling/dtype/boundary
// plus the harness-config fields), so scaling runs join the CI regression
// gate against bench/baseline.json. The record's "cores" rung label is the
// identity; the actual team lands in the non-identity "threads" field. In
// --smoke mode the problems shrink to smoke scale and the rung set is
// pinned to {1, 2} regardless of the host's core count, so the records are
// machine-independent and baseline coverage cannot depend on the runner.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Figure 9: scalability across stencils and ISAs");

  const int maxc = cfg.threads;
  std::vector<int> cores;
  if (cfg.smoke) {
    cores = {1, 2};  // fixed rungs: identity must not depend on the host
  } else {
    for (int c = 1; c < maxc; c *= 2) cores.push_back(c);
    cores.push_back(maxc);
  }

  CsvSink csv(cfg.csv_path, "fig,stencil,isa,method,cores,gflops");
  JsonSink json(cfg.json_path);
  bool ok = true;

  for (tsv::Problem p : tsv::table1_problems(cfg.paper_scale)) {
    if (cfg.smoke) p = smoke_problem(p);
    for (tsv::Isa isa : tsv::runnable_isas()) {
      if (isa == tsv::Isa::kScalar) continue;  // the paper compares vector ISAs
      std::printf("%s (%s), %tdx%tdx%td, T=%td, block %tdx%tdx%td/bt=%td\n",
                  p.name.c_str(), tsv::isa_name(isa), p.nx, p.ny, p.nz,
                  p.steps, p.bx, p.by, p.bz, p.bt);
      std::printf("  %-13s", "cores:");
      for (int c : cores) std::printf(" %8d", c);
      std::printf("\n");
      for (const auto& con : contenders()) {
        std::printf("  %-13s", con.name);
        for (int c : cores) {
          try {
            tsv::ResolvedOptions rc;
            const double gf = run_problem_best(p, con.method, con.tiling, isa,
                                               c, 3, 0, tsv::Dtype::kF64,
                                               cfg.tune, &rc);
            std::printf(" %8.1f", gf);
            std::fflush(stdout);
            csv.row("9,%s,%s,%s,%d,%.3f", p.name.c_str(), tsv::isa_name(isa),
                    con.name, c, gf);
            json.record(
                "{\"bench\":\"fig9\",\"stencil\":\"%s\",\"isa\":\"%s\","
                "\"method\":\"%s\",\"tiling\":\"%s\",\"dtype\":\"f64\","
                "\"boundary\":\"%s\",\"cores\":\"c%d\",\"gflops\":%.3f%s}",
                p.name.c_str(), tsv::isa_name(isa),
                tsv::method_name(con.method), tsv::tiling_name(con.tiling),
                boundary_field_name(), c, gf, json_cfg_fields(rc).c_str());
          } catch (const std::exception& e) {
            ok = false;
            std::printf(" %8s", "ERROR");
            std::fprintf(stderr, "\nfig9 %s %s/%s c=%d failed: %s\n",
                         p.name.c_str(), con.name, tsv::isa_name(isa), c,
                         e.what());
            json.record(
                "{\"bench\":\"fig9\",\"stencil\":\"%s\",\"isa\":\"%s\","
                "\"method\":\"%s\",\"tiling\":\"%s\",\"dtype\":\"f64\","
                "\"boundary\":\"%s\",\"cores\":\"c%d\",\"error\":true}",
                p.name.c_str(), tsv::isa_name(isa),
                tsv::method_name(con.method), tsv::tiling_name(con.tiling),
                boundary_field_name(), c);
          }
        }
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
  return ok ? 0 : 1;
}
