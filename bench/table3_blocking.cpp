// Table 3 — speedups over SDSL per storage level and blocking level in the
// multicore cache-blocking experiments (paper §4.3). Columns mirror the
// paper:   | Tessellation | Our | Our (two time steps) |
//
// Expected shape (paper): means of 1.56x / 2.69x / 3.29x with L1 blocking
// and 1.32x / 2.79x / 3.48x with L2 blocking.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Table 3: multicore speedups over SDSL (1D heat, tiled)");

  const tsv::index steps = cfg.paper_scale ? 1000 : 240;
  struct Blocking {
    const char* name;
    tsv::index bx, bt;
  };
  const Blocking blockings[] = {{"L1", 2048, 128}, {"L2", 16384, 512}};
  const auto ladder = storage_ladder();
  const SizeRung rungs[] = {ladder[2], ladder[3]};  // L3 cache / memory

  CsvSink csv(cfg.csv_path, "table,level,blocking,method,speedup_vs_sdsl");
  std::printf("%-7s %-4s | %13s %8s %8s\n", "level", "blk", "Tessellation",
              "Our", "Our2");

  double mean[2][4] = {{0}};
  int cnt[2] = {0, 0};
  for (int b = 0; b < 2; ++b)
    for (const SizeRung& rung : rungs) {
      const tsv::index nx = cfg.paper_scale ? 10240000 : rung.nx;
      tsv::Problem p{.name = "1d3p", .kind = tsv::StencilKind::k1d3p,
                     .nx = nx, .ny = 1, .nz = 1, .steps = steps,
                     .bx = blockings[b].bx, .by = 1, .bz = 1,
                     .bt = blockings[b].bt};
      double gf[4];
      int i = 0;
      for (const auto& c : contenders())
        gf[i++] = run_problem_best(p, c.method, c.tiling, tsv::best_isa(),
                              cfg.threads);
      std::printf("%-7s %-4s |", rung.level, blockings[b].name);
      for (int k = 1; k < 4; ++k) {
        const double sp = gf[k] / gf[0];
        mean[b][k] += sp;
        std::printf(" %s%7.2fx", k == 1 ? "      " : "", sp);
        csv.row("3,%s,%s,%s,%.3f", rung.level, blockings[b].name,
                contenders()[k].name, sp);
      }
      std::printf("\n");
      ++cnt[b];
    }
  for (int b = 0; b < 2; ++b) {
    std::printf("%-7s %-4s |", "mean", blockings[b].name);
    for (int k = 1; k < 4; ++k)
      std::printf(" %s%7.2fx", k == 1 ? "      " : "", mean[b][k] / cnt[b]);
    std::printf("\n");
  }
  std::printf("(paper means: L1 -> 1.56x 2.69x 3.29x ; L2 -> 1.32x 2.79x 3.48x)\n");
  return 0;
}
