// Ablation A (paper §3.5) — in-register W x W matrix transpose schedules.
//
// The paper claims the conventional schedule (in-lane unpacks first, the
// lane-crossing permutes exposed at the end) costs ~25% more than its
// improved order, which issues the 3-cycle lane-crossing instructions first
// so their latency hides under the single-cycle unpacks. This microbench
// measures both schedules for AVX2 (4x4) and AVX-512 (8x8), plus the
// whole-row block transform built on them.

#include <benchmark/benchmark.h>

#include "tsv/common/aligned.hpp"
#include "tsv/simd/transpose.hpp"

namespace {

using tsv::index;

template <typename V, bool kBaseline>
void bm_register_transpose(benchmark::State& state) {
  constexpr int W = V::width;
  alignas(64) double data[W * W];
  for (int i = 0; i < W * W; ++i) data[i] = 0.5 * i;
  V v[W];
  for (int j = 0; j < W; ++j) v[j] = V::load(data + j * W);
  for (auto _ : state) {
    // 8 dependent transposes per iteration to expose latency, as the paper's
    // cycle-count argument is about the dependency chain.
    for (int rep = 0; rep < 8; ++rep) {
      if constexpr (kBaseline)
        tsv::transpose_baseline(v);
      else
        tsv::transpose(v);
      benchmark::DoNotOptimize(v[0]);
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}

template <typename V, bool kBaseline>
void bm_block_row(benchmark::State& state) {
  constexpr int W = V::width;
  const index n = 1 << 16;
  tsv::AlignedBuffer<double> row(n);
  for (index i = 0; i < n; ++i) row[i] = 0.25 * static_cast<double>(i % 17);
  for (auto _ : state) {
    for (index b = 0; b < n; b += W * W) {
      V v[W];
      for (int j = 0; j < W; ++j) v[j] = V::load(row.data() + b + j * W);
      if constexpr (kBaseline)
        tsv::transpose_baseline(v);
      else
        tsv::transpose(v);
      for (int j = 0; j < W; ++j) v[j].store(row.data() + b + j * W);
    }
    benchmark::DoNotOptimize(row.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(double));
}

}  // namespace

#if defined(__AVX2__)
BENCHMARK(bm_register_transpose<tsv::Vec<double, 4>, false>)
    ->Name("transpose4x4/improved");
BENCHMARK(bm_register_transpose<tsv::Vec<double, 4>, true>)
    ->Name("transpose4x4/lane-crossing-last");
BENCHMARK(bm_block_row<tsv::Vec<double, 4>, false>)
    ->Name("block_row4x4/improved");
BENCHMARK(bm_block_row<tsv::Vec<double, 4>, true>)
    ->Name("block_row4x4/lane-crossing-last");
#endif
#if defined(__AVX512F__)
BENCHMARK(bm_register_transpose<tsv::Vec<double, 8>, false>)
    ->Name("transpose8x8/improved");
BENCHMARK(bm_register_transpose<tsv::Vec<double, 8>, true>)
    ->Name("transpose8x8/extract-insert");
BENCHMARK(bm_block_row<tsv::Vec<double, 8>, false>)
    ->Name("block_row8x8/improved");
BENCHMARK(bm_block_row<tsv::Vec<double, 8>, true>)
    ->Name("block_row8x8/extract-insert");
#endif

BENCHMARK_MAIN();
