#!/usr/bin/env python3
"""Bench regression gate: compare a bench-smoke JSON run against the
committed baseline.

Usage: compare_baseline.py BASELINE.json NEW.json [--tolerance 0.6]
                           [--report FILE]

Records are joined on their identifying fields (everything except the
measurements and the harness-config fields the benches attach). Because CI
runners differ wildly in absolute speed, each record's ratio new/baseline is
normalized by the MEDIAN ratio across all joined records — the gate catches
a configuration that regressed relative to the rest of the suite, not a
slow runner. A record fails when its normalized ratio drops below the
tolerance (default 0.6, generous on purpose: smoke runs are short and
noisy).

Hard failures regardless of timing:
  * a record in the new run carries "error": true
  * a baseline configuration is missing from the new run (coverage loss)

Exit status 0 = gate passed, 1 = regression / coverage loss, 2 = bad input.
"""

import argparse
import json
import statistics
import sys

# Fields that do NOT identify a configuration: measurements, and the
# harness-config fields every record now carries (threads vary by runner;
# resolved blocks vary with tuning). The fig12 latency fields are
# measurements too — p99 varies run to run while the configuration
# (policy, class, gangs) stays the join key.
NON_IDENTITY = {
    "gflops", "points_per_s", "speedup", "error",
    "threads", "tune", "bx", "by", "bz", "bt", "streaming",
    "req_per_s", "requests", "p50_ms", "p95_ms", "p99_ms", "mean_ms",
    "deadline_missed", "shed", "shed_rate", "coalesced", "retries",
}


def identity(rec):
    return tuple(sorted((k, v) for k, v in rec.items() if k not in NON_IDENTITY))


def metric(rec):
    if "req_per_s" in rec:
        return float(rec["req_per_s"])
    if "points_per_s" in rec:
        return float(rec["points_per_s"])
    if "gflops" in rec:
        return float(rec["gflops"])
    return None


def load_bound(rec):
    """True for records whose metric is pinned by OFFERED LOAD, not machine
    speed (fig12's open-loop req_per_s: fixed arrival rate, any machine that
    keeps up completes the same requests over the same horizon). These are
    gated on the absolute new/baseline ratio — normalizing them by the
    machine-speed median would false-fail them on any runner faster than
    the baseline machine."""
    return "req_per_s" in rec


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        sys.exit(f"{path}: expected a JSON array of records")
    return data


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.6,
                    help="fail below tolerance * median(new/baseline)")
    ap.add_argument("--report", default=None, help="also write report here")
    args = ap.parse_args()

    base = {identity(r): r for r in load(args.baseline) if metric(r)}
    new = {identity(r): r for r in load(args.new)}

    lines = []
    failures = []

    for key, rec in new.items():
        if rec.get("error"):
            failures.append(f"ERROR record in new run: {dict(key)}")

    joined = []
    for key, brec in base.items():
        nrec = new.get(key)
        if nrec is None:
            failures.append(f"MISSING from new run: {dict(key)}")
            continue
        m_new = metric(nrec)
        if m_new is None or m_new <= 0:
            failures.append(f"NO METRIC in new run: {dict(key)}")
            continue
        joined.append((key, metric(brec), m_new, load_bound(brec)))

    if not joined:
        print("no joinable records between baseline and new run", file=sys.stderr)
        return 2

    # The machine-speed median comes from the machine-bound records only;
    # with none joined (a latency-only comparison) 1.0 degrades gracefully
    # to "absolute ratios for everything".
    machine_ratios = [m_new / m_base
                      for _, m_base, m_new, lb in joined if not lb]
    med = statistics.median(machine_ratios) if machine_ratios else 1.0
    floor = args.tolerance * med
    lines.append(f"records joined: {len(joined)}   median new/baseline: "
                 f"{med:.3f}   floor: {args.tolerance} * median = {floor:.3f}"
                 f"   (load-bound records: floor = {args.tolerance})")

    for key, m_base, m_new, lb in joined:
        ratio = m_new / m_base
        rec_floor = args.tolerance if lb else floor
        norm = ratio if lb else ratio / med
        mark = "FAIL" if ratio < rec_floor else "ok"
        if ratio < rec_floor:
            failures.append(
                f"REGRESSION {dict(key)}: {m_new:.3g} vs baseline "
                f"{m_base:.3g} (normalized {norm:.2f}x < {args.tolerance})")
        lines.append(f"  [{mark}] norm={norm:5.2f}x  new={m_new:12.3g}  "
                     f"base={m_base:12.3g}  {dict(key)}")

    lines.append("")
    if failures:
        lines.append(f"GATE FAILED: {len(failures)} problem(s)")
        lines.extend("  " + f for f in failures)
    else:
        lines.append("GATE PASSED")

    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
