// Figure 7 — sequential block-free experiments (paper §4.2).
//
// Single thread, no tiling. 1D 3-point heat across problem sizes ranging
// from L1 cache to main memory, for every vectorization method and every
// requested element type (--dtype f64|f32|both; float doubles the lanes per
// vector, which is the point of the dtype axis). Two total step counts are
// reported: the default (paper T=1000, scaled to 100 here) and 10x that
// (paper Fig. 7(b), T=10000) which amortizes DLT's global transform — pass
// --long to run only the 10x variant, --paper-scale for the published
// sizes/steps, --smoke for a CI-sized artifact run.
//
// Expected shape (paper): our 2-step variant wins everywhere; our 1-step
// scheme beats multiload/reorg at every level; DLT is competitive only at
// small sizes with long T; multiload is the slowest vectorized method.

#include "bench_common.hpp"

namespace {

using namespace bench;

// The explicitly vectorized methods, enumerated from the capability
// registry: scalar is the correctness reference and autovec the compiler
// baseline (both measured by the tiled experiments), everything else the
// registry claims for untiled 1D sweeps is benchmarked here — including any
// method added after this bench was written.
std::vector<tsv::Method> fig7_methods() {
  std::vector<tsv::Method> v;
  for (tsv::Method m : tsv::supported_methods(tsv::Tiling::kNone, 1))
    if (m != tsv::Method::kScalar && m != tsv::Method::kAutoVec)
      v.push_back(m);
  return v;
}

template <typename T>
bool sweep_dtype(tsv::index steps, const Config& cfg, CsvSink& csv,
                 JsonSink& json) {
  const auto methods = fig7_methods();
  const tsv::Dtype dt = tsv::dtype_of<T>();
  bool ok = true;
  std::printf("T = %td, dtype = %s (single thread, no blocking)\n", steps,
              tsv::dtype_name(dt));
  std::printf("%-5s %10s |", "level", "nx");
  for (tsv::Method m : methods) std::printf(" %13s", tsv::method_name(m));
  std::printf("\n");

  const std::vector<SizeRung> ladder =
      cfg.nx_override > 0 ? std::vector<SizeRung>{{"custom", cfg.nx_override}}
                          : storage_ladder(cfg.smoke, dt);
  for (const SizeRung& rung : ladder) {
    const tsv::index nx = cfg.paper_scale ? 10240000 : rung.nx;
    std::printf("%-5s %10td |", rung.level, nx);
    for (tsv::Method m : methods) {
      tsv::Options o;
      o.method = m;
      o.isa = cfg.isa;
      o.steps = steps;
      o.tune = cfg.tune;
      o.stream = cfg.stream;
      o.boundary = cfg.boundary;
      const auto s = tsv::make_1d3p<T>(1.0 / 3.0);
      try {
        tsv::Grid1D<T> g(nx, 1);
        g.fill([](tsv::index x) {
          return T(0.25 + 1e-4 * static_cast<double>(x % 101));
        });
        tsv::ResolvedOptions rc;
        // Smoke runs feed the CI regression gate: a single-shot timing on a
        // shared runner can stall 100x, so take the best of three there.
        double gf = time_run(g, s, o, nx, &rc);
        for (int rep = 1; cfg.smoke && rep < 3; ++rep)
          gf = std::max(gf, time_run(g, s, o, nx, &rc));
        std::printf(" %13.2f", gf);
        std::fflush(stdout);
        csv.row("7,%td,%s,%td,%s,%s,%.3f", steps, rung.level, nx,
                tsv::method_name(m), tsv::dtype_name(dt), gf);
        json.record(
            "{\"bench\":\"fig7\",\"steps\":%td,\"level\":\"%s\",\"nx\":%td,"
            "\"method\":\"%s\",\"isa\":\"%s\",\"dtype\":\"%s\","
            "\"boundary\":\"%s\",\"gflops\":%.3f,\"points_per_s\":%.0f%s}",
            steps, rung.level, nx, tsv::method_name(m),
            tsv::isa_name(cfg.isa == tsv::Isa::kAuto ? tsv::best_isa()
                                                     : cfg.isa),
            tsv::dtype_name(dt), boundary_field_name(), gf,
            points_per_sec(gf, s.flops_per_point), json_cfg_fields(rc).c_str());
      } catch (const std::exception& e) {
        ok = false;
        std::printf(" %13s", "ERROR");
        std::fprintf(stderr, "\nfig7 %s/%s nx=%td failed: %s\n",
                     tsv::method_name(m), tsv::dtype_name(dt), nx, e.what());
        json.record(
            "{\"bench\":\"fig7\",\"method\":\"%s\",\"dtype\":\"%s\","
            "\"boundary\":\"%s\",\"nx\":%td,\"error\":true}",
            tsv::method_name(m), tsv::dtype_name(dt), boundary_field_name(),
            nx);
      }
    }
    std::printf("\n");
    if (cfg.paper_scale) break;  // paper uses one (large) size per T
  }
  std::printf("\n");
  return ok;
}

bool sweep(tsv::index steps, const Config& cfg, CsvSink& csv, JsonSink& json) {
  bool ok = true;
  for (tsv::Dtype d : cfg.dtypes)
    ok &= (d == tsv::Dtype::kF32) ? sweep_dtype<float>(steps, cfg, csv, json)
                                  : sweep_dtype<double>(steps, cfg, csv, json);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Figure 7: sequential block-free performance (1D heat)");
  CsvSink csv(cfg.csv_path, "fig,steps,level,nx,method,dtype,gflops");
  JsonSink json(cfg.json_path);
  // Smoke steps are sized for the CI gate: 4096 x 64 steps puts one
  // measurement in the hundreds-of-microseconds range — enough signal over
  // timer jitter for the 0.6x regression floor, still instant to run.
  const tsv::index base = cfg.smoke ? 64 : cfg.paper_scale ? 1000 : 100;
  bool ok = true;
  // --smoke runs exactly one sweep regardless of --long (otherwise the two
  // flags together would skip both sweeps and pass vacuously).
  if (cfg.smoke || !cfg.long_t) ok &= sweep(base, cfg, csv, json);  // Fig. 7(a)
  if (!cfg.smoke) ok &= sweep(base * 10, cfg, csv, json);  // Fig. 7(b)
  return ok ? 0 : 1;
}
