// Figure 7 — sequential block-free experiments (paper §4.2).
//
// Single thread, no tiling. 1D 3-point heat across problem sizes ranging
// from L1 cache to main memory, for every vectorization method. Two total
// step counts are reported: the default (paper T=1000, scaled to 100 here)
// and 10x that (paper Fig. 7(b), T=10000) which amortizes DLT's global
// transform — pass --long to run only the 10x variant, --paper-scale for the
// published sizes/steps.
//
// Expected shape (paper): our 2-step variant wins everywhere; our 1-step
// scheme beats multiload/reorg at every level; DLT is competitive only at
// small sizes with long T; multiload is the slowest vectorized method.

#include "bench_common.hpp"

namespace {

using namespace bench;

// The explicitly vectorized methods, enumerated from the capability
// registry: scalar is the correctness reference and autovec the compiler
// baseline (both measured by the tiled experiments), everything else the
// registry claims for untiled 1D sweeps is benchmarked here — including any
// method added after this bench was written.
std::vector<tsv::Method> fig7_methods() {
  std::vector<tsv::Method> v;
  for (tsv::Method m : tsv::supported_methods(tsv::Tiling::kNone, 1))
    if (m != tsv::Method::kScalar && m != tsv::Method::kAutoVec)
      v.push_back(m);
  return v;
}

void sweep(tsv::index steps, const Config& cfg) {
  const auto methods = fig7_methods();
  std::printf("T = %td (single thread, no blocking)\n", steps);
  std::printf("%-5s %10s |", "level", "nx");
  for (tsv::Method m : methods) std::printf(" %13s", tsv::method_name(m));
  std::printf("\n");
  CsvSink csv(cfg.csv_path, "fig,steps,level,nx,method,gflops");

  for (const SizeRung& rung : storage_ladder()) {
    const tsv::index nx = cfg.paper_scale ? 10240000 : rung.nx;
    std::printf("%-5s %10td |", rung.level, nx);
    for (tsv::Method m : methods) {
      tsv::Grid1D<double> g(nx, 1);
      g.fill([](tsv::index x) { return 0.25 + 1e-4 * static_cast<double>(x % 101); });
      tsv::Options o;
      o.method = m;
      o.isa = tsv::best_isa();
      o.steps = steps;
      const auto s = tsv::make_1d3p(1.0 / 3.0);
      const double gf = time_run(g, s, o, nx);
      std::printf(" %13.2f", gf);
      std::fflush(stdout);
      csv.row("7,%td,%s,%td,%s,%.3f", steps, rung.level, nx,
              tsv::method_name(m), gf);
    }
    std::printf("\n");
    if (cfg.paper_scale) break;  // paper uses one (large) size per T
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Figure 7: sequential block-free performance (1D heat)");
  const tsv::index base = cfg.paper_scale ? 1000 : 100;
  if (!cfg.long_t) sweep(base, cfg);       // Fig. 7(a)
  sweep(base * 10, cfg);                   // Fig. 7(b)
  return 0;
}
