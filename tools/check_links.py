#!/usr/bin/env python3
"""Docs link checker: fail CI on broken relative links in Markdown files.

Usage: check_links.py [FILE_OR_DIR ...]     (default: README.md docs/)

Checks every inline Markdown link [text](target) whose target is relative
(no scheme, no leading '#'):
  * the referenced file must exist relative to the linking file;
  * a '#fragment' on a .md target must match a heading anchor in that file
    (GitHub-style slugs: lowercase, punctuation stripped, spaces -> dashes).

Absolute URLs (http/https/mailto) are ignored — this gate is about repo
self-consistency, not the internet. Exit 0 = all links resolve, 1 = broken
links (each printed as file:line), 2 = bad invocation.
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def github_slug(heading):
    """GitHub's anchor slug: strip markup-ish chars, lowercase, dashes."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path):
    anchors = set()
    counts = {}
    for line in md_path.read_text(encoding="utf-8").splitlines():
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(md_path, problems):
    text = md_path.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for regex in (LINK_RE, IMAGE_RE):
            for m in regex.finditer(line):
                target = m.group(1)
                if SCHEME_RE.match(target) or target.startswith("#"):
                    continue  # external URL / same-file fragment
                path_part, _, fragment = target.partition("#")
                dest = (md_path.parent / path_part).resolve()
                if not dest.exists():
                    problems.append(
                        f"{md_path}:{lineno}: broken link -> {target}")
                    continue
                if fragment and dest.suffix == ".md":
                    if fragment not in anchors_of(dest):
                        problems.append(
                            f"{md_path}:{lineno}: missing anchor "
                            f"#{fragment} in {path_part}")


def main(argv):
    roots = [pathlib.Path(a) for a in argv[1:]] or [
        pathlib.Path("README.md"), pathlib.Path("docs")]
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.suffix == ".md" and root.exists():
            files.append(root)
        else:
            print(f"check_links: no such markdown input: {root}",
                  file=sys.stderr)
            return 2
    problems = []
    for f in files:
        check_file(f, problems)
    if problems:
        print("\n".join(problems))
        print(f"check_links: {len(problems)} broken link(s) "
              f"across {len(files)} file(s)")
        return 1
    print(f"check_links: OK ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
